// Package lint implements kappavet, the repository's project-invariant
// static-analysis suite. The partitioner's engineering claims rest on
// properties the Go compiler cannot see: byte-identical partitions across
// worker counts, transports, and OS processes (determinism), an
// allocation-free multilevel hot path, panic-free library error contracts,
// and versioned wire codecs whose encode and decode paths stay in sync.
// Each analyzer in this package encodes one of those invariants as a
// machine-checked rule, so the bug classes that have already been fixed by
// hand once (the gen.PrefAttach map-iteration nondeterminism, the
// wire.DecodeAssign version skew) are caught on every PR instead of being
// rediscovered by chaos tests.
//
// The suite is deliberately stdlib-only (go/parser, go/types, go/ast;
// packages enumerated via `go list`), keeping go.mod dependency-free.
//
// # Directives
//
// A finding is suppressed with an in-source directive naming the analyzer
// and a reason:
//
//	//kappa:allow <analyzer> <reason...>
//
// placed on the flagged line or on the line directly above it. Directives
// are themselves checked: an unknown analyzer name, a missing reason, or a
// directive that suppresses nothing is reported as a finding of the
// built-in "directive" analyzer (which cannot be suppressed).
//
// Two more directives mark code for analyzers: `//kappa:hotpath` in a
// function's doc comment opts the function into the hotalloc analyzer, and
// `//kappa:invariant` marks an internal-invariant helper whose panics the
// panicfree analyzer accepts. `//kappa:since <version>` on a struct field
// in the wire package marks a version-gated wire field for wiresync.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// A Finding is one analyzer diagnostic, keyed by position.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// An Analyzer checks one project invariant. Package is called once per
// loaded package; Finish (optional) runs after every package has been seen,
// for whole-program checks such as wiresync's cross-package frame audit.
type Analyzer interface {
	Name() string
	Doc() string
	Package(p *Pass)
	Finish(report func(Finding))
}

// A Pass hands one type-checked package to an analyzer.
type Pass struct {
	Pkg   *Package
	Dirs  *Directives
	suite *Suite
	name  string
}

// Report records a finding at n's position unless a matching
// //kappa:allow directive suppresses it.
func (p *Pass) Report(n ast.Node, format string, args ...any) {
	p.suite.report(Finding{
		Analyzer: p.name,
		Pos:      p.suite.fset.Position(n.Pos()),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position resolves a node position (for analyzers that need to inspect
// lines themselves).
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.suite.fset.Position(pos)
}

// Directive verbs.
const (
	verbAllow     = "allow"
	verbHotpath   = "hotpath"
	verbInvariant = "invariant"
	verbSince     = "since"
)

// A Directive is one parsed //kappa:<verb> comment.
type Directive struct {
	Pos  token.Position
	Verb string
	Args []string // allow: [analyzer, reason...]; since: [version]
	used bool
}

// Directives indexes a package's kappa directives.
type Directives struct {
	all []*Directive
	// allows maps file → line → allow directives guarding that line. A
	// directive guards its own line (trailing comment) and the line below
	// (comment-above form).
	allows map[string]map[int][]*Directive
	// marks maps a directive position (file:line) to hotpath/invariant/since
	// directives so analyzers can associate them with declarations.
	marks map[string][]*Directive
}

const directivePrefix = "//kappa:"

// parseDirectives extracts every kappa directive from the package's files.
func parseDirectives(p *Package, fset *token.FileSet) *Directives {
	d := &Directives{
		allows: make(map[string]map[int][]*Directive),
		marks:  make(map[string][]*Directive),
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, directivePrefix))
				dir := &Directive{Pos: fset.Position(c.Pos())}
				if len(fields) > 0 {
					dir.Verb = fields[0]
					dir.Args = fields[1:]
				}
				d.all = append(d.all, dir)
				switch dir.Verb {
				case verbAllow:
					file := d.allows[dir.Pos.Filename]
					if file == nil {
						file = make(map[int][]*Directive)
						d.allows[dir.Pos.Filename] = file
					}
					file[dir.Pos.Line] = append(file[dir.Pos.Line], dir)
					file[dir.Pos.Line+1] = append(file[dir.Pos.Line+1], dir)
				case verbHotpath, verbInvariant, verbSince:
					key := dir.Pos.Filename + ":" + strconv.Itoa(dir.Pos.Line)
					d.marks[key] = append(d.marks[key], dir)
				}
			}
		}
	}
	return d
}

// markedWith reports whether a comment group (e.g. a function's doc comment
// or a struct field's comment) carries the given directive verb, and marks
// it used.
func (d *Directives) markedWith(fset *token.FileSet, cg *ast.CommentGroup, verb string) (*Directive, bool) {
	if cg == nil {
		return nil, false
	}
	for _, c := range cg.List {
		pos := fset.Position(c.Pos())
		key := pos.Filename + ":" + strconv.Itoa(pos.Line)
		for _, dir := range d.marks[key] {
			if dir.Verb == verb {
				dir.used = true
				return dir, true
			}
		}
	}
	return nil, false
}

// Suite runs every analyzer over a set of loaded packages and collects the
// surviving findings.
type Suite struct {
	fset      *token.FileSet
	analyzers []Analyzer
	findings  []Finding
	dirs      []*Directives
}

// Analyzers returns a fresh instance of every kappavet analyzer (fresh so
// that cross-package state, e.g. wiresync's, is per-run).
func Analyzers() []Analyzer {
	return []Analyzer{
		newMapiter(),
		newNondet(),
		newHotalloc(),
		newPanicfree(),
		newWiresync(),
	}
}

// NewSuite builds a suite over the default analyzer set.
func NewSuite(fset *token.FileSet) *Suite {
	return &Suite{fset: fset, analyzers: Analyzers()}
}

// Run analyzes every package and returns the findings that survive
// suppression, sorted by position. Directive problems (unknown analyzer in
// an allow, missing reason, an allow that suppressed nothing, an unknown
// verb, an unused hotpath/invariant/since mark) are appended as findings of
// the "directive" pseudo-analyzer.
func (s *Suite) Run(pkgs []*Package) []Finding {
	known := make(map[string]bool, len(s.analyzers))
	for _, a := range s.analyzers {
		known[a.Name()] = true
	}
	for _, pkg := range pkgs {
		dirs := parseDirectives(pkg, s.fset)
		s.dirs = append(s.dirs, dirs)
		for _, a := range s.analyzers {
			a.Package(&Pass{Pkg: pkg, Dirs: dirs, suite: s, name: a.Name()})
		}
	}
	for _, a := range s.analyzers {
		a.Finish(s.report)
	}
	s.checkDirectives(known)
	sort.Slice(s.findings, func(i, j int) bool {
		a, b := s.findings[i], s.findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return s.findings
}

// report records a finding unless an allow directive covers it. Suppression
// is resolved at report time against the reporting package's directives,
// which the suite tracks via s.dirs (the current package's Directives are
// the ones most recently appended when per-package analyzers report;
// Finish-time reports search every package's directives, since wiresync
// anchors findings to declarations in other packages).
func (s *Suite) report(f Finding) {
	for _, dirs := range s.dirs {
		for _, dir := range dirs.allows[f.Pos.Filename][f.Pos.Line] {
			if len(dir.Args) > 0 && dir.Args[0] == f.Analyzer {
				dir.used = true
				return
			}
		}
	}
	s.findings = append(s.findings, f)
}

// checkDirectives validates every directive after the analyzers ran: the
// suppression machinery must itself be auditable, so a misspelled analyzer
// name or a reason-free allow is a finding, not a silent no-op.
func (s *Suite) checkDirectives(known map[string]bool) {
	bad := func(d *Directive, format string, args ...any) {
		s.findings = append(s.findings, Finding{
			Analyzer: "directive",
			Pos:      d.Pos,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, dirs := range s.dirs {
		for _, d := range dirs.all {
			switch d.Verb {
			case verbAllow:
				switch {
				case len(d.Args) == 0:
					bad(d, "kappa:allow needs an analyzer name and a reason")
				case !known[d.Args[0]]:
					bad(d, "kappa:allow names unknown analyzer %q", d.Args[0])
				case len(d.Args) < 2:
					bad(d, "kappa:allow %s needs a reason", d.Args[0])
				case !d.used:
					bad(d, "kappa:allow %s suppresses nothing on this or the next line", d.Args[0])
				}
			case verbHotpath, verbInvariant:
				if !d.used {
					bad(d, "kappa:%s is not attached to the doc comment of a function (or, for invariant, a sentinel panic type)", d.Verb)
				}
			case verbSince:
				if len(d.Args) != 1 {
					bad(d, "kappa:since needs exactly one version argument")
				} else if _, err := strconv.Atoi(d.Args[0]); err != nil {
					bad(d, "kappa:since version %q is not an integer", d.Args[0])
				} else if !d.used {
					bad(d, "kappa:since is not attached to a wire struct field")
				}
			default:
				bad(d, "unknown directive kappa:%s", d.Verb)
			}
		}
	}
}
