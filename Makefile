GO ?= go

.PHONY: all vet build test lint check docs fmt bench bench-smoke bench-json examples race fuzz

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs kappavet, the project-invariant static-analysis suite
# (determinism, hot-path allocations, error contracts, wire hygiene); see
# ARCHITECTURE.md "Static guarantees". Whole-module scope is required:
# wiresync audits encode/decode paths across packages.
lint:
	$(GO) run ./cmd/kappavet ./...

# check is the tier-1 gate enforced by CI.
check: vet build test lint

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# docs verifies the documentation layer: formatting, vet, and the runnable
# godoc examples (README / ARCHITECTURE code snippets are mirrored there).
docs: fmt vet
	$(GO) test -run Example ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-smoke is the CI guard for the perf benchmarks: one iteration of the
# Table1/Table2 suites with allocation tracking, so they cannot rot.
bench-smoke:
	$(GO) test -bench='Table1|Table2' -benchtime=1x -benchmem -run=^$$ .

# bench-json measures the smoke benchmarks (Table1/Table2 + end-to-end
# Partition per family, plus the observed variant quantifying metric-stack
# overhead) with -benchmem semantics and writes the perf trajectory
# artifact, pairing each number with the recorded PR4 numbers. Commit the
# refreshed BENCH_PR8.json alongside perf changes.
bench-json:
	$(GO) run ./cmd/benchjson -baseline BENCH_PR4.json -out BENCH_PR8.json

# examples builds and runs every examples/* program end to end (CI runs
# this too, so the example code can never rot).
examples:
	@set -e; for d in examples/*/; do echo "== $$d"; $(GO) run "./$$d"; done

# race runs the race detector over the concurrency-heavy packages plus the
# pipeline contract tests (context cancellation, transport swap), the
# observability stack (concurrent scrapes against a running pipeline), and
# the service layer (queue/drain/cancel handshakes under concurrent HTTP).
race:
	$(GO) test -race ./internal/core ./internal/coarsen ./internal/matching ./internal/dist ./internal/remote ./internal/obs ./internal/svc .

# fuzz smokes the native Go fuzz targets of the byte-level decoders — the
# file-format parsers (METIS text, binary CSR) and the wire-format message
# codec every socket frame flows through — for a few seconds each; CI runs
# this so the decoders can never regress into panicking on malformed input.
# Longer local sessions:
#   go test ./internal/graphio -run=^$ -fuzz=FuzzReadMETIS -fuzztime=5m
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/graphio -run=^$$ -fuzz=FuzzReadMETIS -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/graphio -run=^$$ -fuzz=FuzzReadBinary -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire -run=^$$ -fuzz=FuzzMsgCodec -fuzztime=$(FUZZTIME)
