GO ?= go

.PHONY: all vet build test lint check docs fmt bench bench-baseline bench-compare examples race fuzz

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs kappavet, the project-invariant static-analysis suite
# (determinism, hot-path allocations, error contracts, wire hygiene); see
# ARCHITECTURE.md "Static guarantees". Whole-module scope is required:
# wiresync audits encode/decode paths across packages.
lint:
	$(GO) run ./cmd/kappavet ./...

# check is the tier-1 gate enforced by CI.
check: vet build test lint

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# docs verifies the documentation layer: formatting, vet, and the runnable
# godoc examples (README / ARCHITECTURE code snippets are mirrored there).
docs: fmt vet
	$(GO) test -run Example ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# The regression gate compares the Table1/Table2 suite against the committed
# benchstat-comparable baseline (BENCH_BASELINE.txt). GOMAXPROCS=1 makes the
# gated metrics — allocs/op and B/op — machine-independent: the pipeline is
# deterministic, so single-threaded allocation counts are reproducible
# anywhere; ns/op stays informational. Refresh the baseline intentionally
# with bench-baseline and commit it alongside the change that explains it.
BENCH_GATE ?= Table1|Table2
bench-baseline:
	GOMAXPROCS=1 $(GO) test -bench='$(BENCH_GATE)' -benchtime=1x -benchmem -run=^$$ . | tee BENCH_BASELINE.txt

bench-compare:
	GOMAXPROCS=1 $(GO) test -bench='$(BENCH_GATE)' -benchtime=1x -benchmem -run=^$$ . | tee /tmp/bench-current.txt
	$(GO) run ./cmd/benchcmp -baseline BENCH_BASELINE.txt -current /tmp/bench-current.txt

# examples builds and runs every examples/* program end to end (CI runs
# this too, so the example code can never rot).
examples:
	@set -e; for d in examples/*/; do echo "== $$d"; $(GO) run "./$$d"; done

# race runs the race detector over the concurrency-heavy packages plus the
# pipeline contract tests (context cancellation, transport swap), the
# observability stack (concurrent scrapes against a running pipeline), and
# the service layer (queue/drain/cancel handshakes under concurrent HTTP).
race:
	$(GO) test -race ./internal/core ./internal/coarsen ./internal/matching ./internal/dist ./internal/remote ./internal/obs ./internal/svc ./internal/store .

# fuzz smokes the native Go fuzz targets of the byte-level decoders — the
# file-format parsers (METIS text, binary CSR), the wire-format message
# codec every socket frame flows through, and the shard-store readers
# (manifest JSON, shard files) — for a few seconds each; CI runs this so the
# decoders can never regress into panicking on malformed input.
# FUZZMIN caps per-input minimization: binary-format targets surface many
# interesting inputs, and the default 60s minimization per input stalls a
# short smoke run before it fuzzes anything.
# Longer local sessions:
#   go test ./internal/graphio -run=^$ -fuzz=FuzzReadMETIS -fuzztime=5m
FUZZTIME ?= 10s
FUZZMIN ?= 100x
fuzz:
	$(GO) test ./internal/graphio -run=^$$ -fuzz=FuzzReadMETIS -fuzztime=$(FUZZTIME) -fuzzminimizetime=$(FUZZMIN)
	$(GO) test ./internal/graphio -run=^$$ -fuzz=FuzzReadBinary -fuzztime=$(FUZZTIME) -fuzzminimizetime=$(FUZZMIN)
	$(GO) test ./internal/wire -run=^$$ -fuzz=FuzzMsgCodec -fuzztime=$(FUZZTIME) -fuzzminimizetime=$(FUZZMIN)
	$(GO) test ./internal/store -run=^$$ -fuzz=FuzzReadManifest -fuzztime=$(FUZZTIME) -fuzzminimizetime=$(FUZZMIN)
	$(GO) test ./internal/store -run=^$$ -fuzz=FuzzReadShard -fuzztime=$(FUZZTIME) -fuzzminimizetime=$(FUZZMIN)
