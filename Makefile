GO ?= go

.PHONY: all vet build test check bench

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 gate enforced by CI.
check: vet build test

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
