GO ?= go

.PHONY: all vet build test check docs fmt bench

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 gate enforced by CI.
check: vet build test

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# docs verifies the documentation layer: formatting, vet, and the runnable
# godoc examples (README / ARCHITECTURE code snippets are mirrored there).
docs: fmt vet
	$(GO) test -run Example ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
