GO ?= go

.PHONY: all vet build test check docs fmt bench examples race

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 gate enforced by CI.
check: vet build test

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# docs verifies the documentation layer: formatting, vet, and the runnable
# godoc examples (README / ARCHITECTURE code snippets are mirrored there).
docs: fmt vet
	$(GO) test -run Example ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# examples builds and runs every examples/* program end to end (CI runs
# this too, so the example code can never rot).
examples:
	@set -e; for d in examples/*/; do echo "== $$d"; $(GO) run "./$$d"; done

# race runs the race detector over the concurrency-heavy packages plus the
# pipeline contract tests (context cancellation, transport swap).
race:
	$(GO) test -race ./internal/core ./internal/coarsen ./internal/matching ./internal/dist .
