package repro_test

import (
	"fmt"

	"repro"
)

// ExamplePartition_distributedCoarsening runs the pipeline with PE-local
// coarsening: every PE matches and contracts its own subgraph and exchanges
// ghost-node state over per-PE mailboxes (the paper's §3), instead of
// matching on the shared global graph. The mode is byte-deterministic for a
// fixed seed and reaches cuts comparable to shared-memory coarsening.
func ExamplePartition_distributedCoarsening() {
	g := repro.Grid2D(32, 32)
	cfg := repro.NewConfig(repro.Fast, 8) // KaPPa-Fast, k = 8
	cfg.Seed = 42
	cfg.Coarsen = repro.CoarsenDistributed

	res := repro.Partition(g, cfg)
	cut, _, feasible := repro.Evaluate(g, 8, cfg.Eps, res.Blocks)
	fmt.Println("levels built:", res.Levels > 0)
	fmt.Println("feasible:", feasible, "cut agrees:", cut == res.Cut)

	// Fixed seed, fixed config: the distributed mode is exactly
	// reproducible, ghost exchange and all.
	again := repro.Partition(g, cfg)
	same := res.Cut == again.Cut
	for v := range res.Blocks {
		same = same && res.Blocks[v] == again.Blocks[v]
	}
	fmt.Println("deterministic:", same)

	// The shared-memory mode coarsens the same graph for comparison.
	cfg.Coarsen = repro.CoarsenShared
	shared := repro.Partition(g, cfg)
	fmt.Println("both modes partition the grid:", res.Cut > 0 && shared.Cut > 0)

	// Output:
	// levels built: true
	// feasible: true cut agrees: true
	// deterministic: true
	// both modes partition the grid: true
}
