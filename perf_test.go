package repro

import (
	"context"
	"testing"
)

// perfFamilies is one instance per generator family, sized so the full
// matrix stays fast.
func perfFamilies() map[string]*Graph {
	return map[string]*Graph{
		"rgg":      RGG(11, 21),
		"delaunay": DelaunayX(11, 22),
		"grid3d":   Grid3D(9, 9, 9),
		"road":     Road(3000, 5, 23),
		"social":   PrefAttach(3000, 5, 24),
		"banded":   Banded(2500, 8, 20, 0.6, 25),
	}
}

// TestRunArenaReuseByteIdentical is the scratch-reuse pin: running twice on
// the same arena, and once without any arena, must produce byte-identical
// blocks for a fixed seed, across generator families and both coarsening
// modes. A buffer leaking state between runs would show up here.
func TestRunArenaReuseByteIdentical(t *testing.T) {
	for name, g := range perfFamilies() {
		for _, mode := range []CoarsenMode{CoarsenShared, CoarsenDistributed} {
			cfg := NewConfig(Fast, 8)
			cfg.Seed = 1217
			cfg.Coarsen = mode
			fresh, err := Run(context.Background(), g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			arena := NewArena()
			first, err := Run(context.Background(), g, cfg, WithArena(arena))
			if err != nil {
				t.Fatal(err)
			}
			second, err := Run(context.Background(), g, cfg, WithArena(arena))
			if err != nil {
				t.Fatal(err)
			}
			if st := arena.Stats(); st.Borrows == 0 || st.Reused == 0 {
				t.Fatalf("%s/%s: arena not exercised (gets=%d reused=%d)", name, mode, st.Borrows, st.Reused)
			}
			for v := range fresh.Blocks {
				if first.Blocks[v] != fresh.Blocks[v] || second.Blocks[v] != fresh.Blocks[v] {
					t.Fatalf("%s/%s: blocks diverge at node %d between fresh/first/second arena runs", name, mode, v)
				}
			}
			if first.Cut != fresh.Cut || second.Cut != fresh.Cut {
				t.Fatalf("%s/%s: cut diverges", name, mode)
			}
		}
	}
}

// TestRunWorkersByteIdentical pins that the Workers knob trades cores for
// wall-clock only: any worker count must reproduce the serial result
// byte-identically.
func TestRunWorkersByteIdentical(t *testing.T) {
	for name, g := range perfFamilies() {
		cfg := NewConfig(Fast, 8)
		cfg.Seed = 7
		cfg.Workers = 1
		serial, err := Run(context.Background(), g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 16} {
			cfg.Workers = workers
			got, err := Run(context.Background(), g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for v := range serial.Blocks {
				if got.Blocks[v] != serial.Blocks[v] {
					t.Fatalf("%s: Workers=%d diverges from serial at node %d", name, workers, v)
				}
			}
		}
	}
}

// TestRunSharedArenaConcurrent runs several partitions concurrently on ONE
// shared arena; under -race this doubles as the data-race check for the
// arena itself, and the results must match isolated runs.
func TestRunSharedArenaConcurrent(t *testing.T) {
	g := RGG(11, 33)
	cfg := NewConfig(Fast, 8)
	cfg.Seed = 99
	cfg.Workers = 4
	want, err := Run(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	arena := NewArena()
	const runs = 4
	results := make([]Result, runs)
	errs := make([]error, runs)
	done := make(chan int, runs)
	for i := 0; i < runs; i++ {
		go func(i int) {
			results[i], errs[i] = Run(context.Background(), g, cfg, WithArena(arena))
			done <- i
		}(i)
	}
	for i := 0; i < runs; i++ {
		<-done
	}
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		for v := range want.Blocks {
			if results[i].Blocks[v] != want.Blocks[v] {
				t.Fatalf("concurrent run %d diverges at node %d", i, v)
			}
		}
	}
}
