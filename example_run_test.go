package repro_test

import (
	"context"
	"fmt"
	"time"

	"repro"
)

// ExampleRun is the recommended entry point: a context that can cancel the
// run (deadline, Ctrl-C, ...), an error instead of a panic on bad input,
// and optional functional options — here an Observer counting the typed
// trace events the pipeline emits while it works.
func ExampleRun() {
	g := repro.Grid2D(32, 32)
	cfg := repro.NewConfig(repro.Fast, 8) // KaPPa-Fast, k = 8
	cfg.Seed = 42

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	levels, refineIters := 0, 0
	obs := repro.ObserverFunc(func(ev repro.TraceEvent) {
		switch ev.(type) {
		case repro.LevelEvent:
			levels++ // one per pushed contraction level: nodes/edges/time
		case repro.RefineEvent:
			refineIters++ // one per global refinement iteration: gain
		}
	})

	res, err := repro.Run(ctx, g, cfg, repro.WithObserver(obs))
	if err != nil {
		fmt.Println("run failed:", err)
		return
	}
	cut, _, feasible := repro.Evaluate(g, 8, cfg.Eps, res.Blocks)
	fmt.Println("feasible:", feasible, "cut agrees:", cut == res.Cut)
	fmt.Println("observed levels:", levels == res.Levels)
	fmt.Println("observed refinement:", refineIters > 0)

	// Invalid configurations surface as errors, never panics:
	bad := cfg
	bad.K = 0
	if _, err := repro.Run(ctx, g, bad); err != nil {
		fmt.Println("bad config rejected:", err != nil)
	}

	// The legacy wrapper is byte-compatible for the same seed:
	legacy := repro.Partition(g, cfg)
	fmt.Println("legacy-identical:", legacy.Cut == res.Cut)

	// Output:
	// feasible: true cut agrees: true
	// observed levels: true
	// observed refinement: true
	// bad config rejected: true
	// legacy-identical: true
}

// ExampleRun_transport swaps the message-passing backend of distributed
// coarsening through the Transport seam: the barrier-based lockstep
// transport stands in for the default channel Exchanger — the same slot a
// future RPC or MPI backend plugs into — without changing a single block
// assignment.
func ExampleRun_transport() {
	g := repro.Grid2D(32, 32)
	cfg := repro.NewConfig(repro.Fast, 8)
	cfg.Seed = 7
	cfg.Coarsen = repro.CoarsenDistributed // PE-local coarsening (§3)

	def, err := repro.Run(context.Background(), g, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	alt, err := repro.Run(context.Background(), g, cfg,
		repro.WithTransport(repro.NewLockstepTransport(8)))
	if err != nil {
		fmt.Println(err)
		return
	}
	same := def.Cut == alt.Cut
	for v := range def.Blocks {
		same = same && def.Blocks[v] == alt.Blocks[v]
	}
	fmt.Println("transports interchangeable:", same)

	// Output:
	// transports interchangeable: true
}
