package repro

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// TestFacadeEndToEnd exercises the public API surface: build, generate,
// partition, evaluate, baselines, METIS round trip.
func TestFacadeEndToEnd(t *testing.T) {
	b := NewBuilder(6)
	for v := int32(0); v < 5; v++ {
		b.AddEdge(v, v+1, 1)
	}
	g := b.Build()
	res := PartitionK(g, 2, 1)
	cut, bal, feasible := Evaluate(g, 2, 0.03, res.Blocks)
	if cut != res.Cut || !feasible || bal > 1.5 {
		t.Fatalf("facade evaluate mismatch: cut %d/%d bal %f feasible %v", cut, res.Cut, bal, feasible)
	}

	var buf bytes.Buffer
	if err := WriteGraph(&buf, g, FormatMETIS); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf, FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 6 {
		t.Fatal("METIS round trip broken through facade")
	}
	buf.Reset()
	if err := WriteGraph(&buf, g, FormatBinary); err != nil {
		t.Fatal(err)
	}
	g3, err := ReadGraph(&buf, FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumNodes() != 6 || g3.NumEdges() != g.NumEdges() {
		t.Fatal("binary round trip broken through facade")
	}

	rgg := RGG(10, 3)
	br := RunBaseline(rgg, 4, 0.03, KMetisLike, 1)
	if br.Cut <= 0 {
		t.Fatal("baseline via facade returned no cut")
	}
}

func TestFacadeGenerators(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"rgg", RGG(8, 1)},
		{"delaunay", DelaunayX(8, 1)},
		{"grid2d", Grid2D(8, 8)},
		{"grid3d", Grid3D(4, 4, 4)},
		{"fem", FEMMesh(800, 2, 1)},
		{"road", Road(1500, 3, 1)},
		{"social", PrefAttach(500, 3, 1)},
		{"rmat", RMAT(8, 8, 1)},
		{"banded", Banded(500, 8, 16, 0.5, 1)},
	}
	for _, c := range cases {
		if c.g.NumNodes() == 0 || c.g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", c.name)
		}
		if err := c.g.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestFacadePresets(t *testing.T) {
	g := Grid2D(16, 16)
	for _, v := range []Variant{Minimal, Fast, Strong} {
		cfg := NewConfig(v, 4)
		cfg.Seed = 2
		res := Partition(g, cfg)
		if _, _, feasible := Evaluate(g, 4, cfg.Eps, res.Blocks); !feasible {
			t.Errorf("%v: infeasible", v)
		}
	}
}

// TestRunMatchesLegacyPartition is the compatibility contract of the new
// pipeline entry point: for a fixed seed, repro.Run must produce Blocks
// byte-identical to legacy repro.Partition across the benchmark generator
// families and both coarsening modes.
func TestRunMatchesLegacyPartition(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"rgg", RGG(11, 6)},
		{"delaunay", DelaunayX(10, 2)},
		{"grid3d", Grid3D(12, 12, 6)},
		{"road", Road(6000, 6, 3)},
		{"social", PrefAttach(4000, 5, 9)},
	}
	for _, tc := range cases {
		for _, mode := range []CoarsenMode{CoarsenShared, CoarsenDistributed} {
			cfg := NewConfig(Fast, 8)
			cfg.Seed = 4242
			cfg.Coarsen = mode
			legacy := Partition(tc.g, cfg)
			res, err := Run(context.Background(), tc.g, cfg)
			if err != nil {
				t.Fatalf("%s/%v: %v", tc.name, mode, err)
			}
			if res.Cut != legacy.Cut {
				t.Fatalf("%s/%v: Run cut %d != Partition cut %d", tc.name, mode, res.Cut, legacy.Cut)
			}
			for v := range legacy.Blocks {
				if res.Blocks[v] != legacy.Blocks[v] {
					t.Fatalf("%s/%v: block of node %d differs", tc.name, mode, v)
				}
			}
		}
	}
}

// TestRunErrorsOnBadConfig pins the facade's error contract.
func TestRunErrorsOnBadConfig(t *testing.T) {
	g := Grid2D(8, 8)
	cfg := NewConfig(Fast, 0) // K = 0 is invalid
	if _, err := Run(context.Background(), g, cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("got %v, want ErrInvalidConfig", err)
	}
}
