// Package repro is a from-scratch Go reproduction of KaPPa, the scalable
// high-quality parallel graph partitioner of Holtgrewe, Sanders and Schulz
// ("Engineering a Scalable High Quality Graph Partitioner", IPDPS 2010).
//
// The package is a thin facade over the implementation packages under
// internal/: it re-exports the graph data structure, the benchmark-family
// graph generators, the KaPPa configuration presets (Minimal/Fast/Strong),
// the partitioning entry points, and the baseline partitioners used by the
// paper's comparison tables.
//
// Quick start:
//
//	g := repro.RGG(15, 1)                     // 2^15-node random geometric graph
//	cfg := repro.NewConfig(repro.Fast, 8)     // KaPPa-Fast, k = 8
//	cfg.Seed = 42
//	res, err := repro.Run(context.Background(), g, cfg)
//	if err != nil { ... }
//	fmt.Println(res.Cut, res.Balance)
//
// Run is the primary entry point: it honors context cancellation, returns
// errors instead of panicking, and accepts functional options — WithObserver
// for typed progress events, WithTransport to swap the message-passing
// backend of distributed coarsening. Partition and PartitionK are the legacy
// wrappers (background context, panic on invalid configuration).
package repro

import (
	"context"
	"io"
	"net/http"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/part"
	"repro/internal/store"
	"repro/internal/svc"
)

// Graph is the weighted undirected graph in adjacency-array (CSR) form.
type Graph = graph.Graph

// Builder incrementally assembles a Graph.
type Builder = graph.Builder

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// GraphFormat names an on-disk graph encoding: METIS text (the partitioning
// community's interchange format) or the compact deterministic binary CSR
// encoding (which also carries coordinates). FormatAuto detects the format
// when reading and picks by file extension when writing files.
type GraphFormat = graphio.Format

// Graph file formats.
const (
	FormatAuto   = graphio.FormatAuto
	FormatMETIS  = graphio.FormatMETIS
	FormatBinary = graphio.FormatBinary
)

// ParseGraphFormat parses a format name: auto | metis | bin.
func ParseGraphFormat(name string) (GraphFormat, error) { return graphio.ParseFormat(name) }

// ReadGraph parses a graph from r; FormatAuto sniffs the binary magic and
// falls back to METIS, so callers can pass any supported file unseen.
func ReadGraph(r io.Reader, f GraphFormat) (*Graph, error) { return graphio.Read(r, f) }

// WriteGraph encodes g to w in the given format (FormatAuto writes METIS).
func WriteGraph(w io.Writer, g *Graph, f GraphFormat) error { return graphio.Write(w, g, f) }

// ReadGraphFile reads a graph file, detecting the format from its content.
func ReadGraphFile(path string) (*Graph, error) { return graphio.ReadFile(path) }

// WriteGraphFile writes a graph file; FormatAuto picks the format from the
// extension (".bgraph"/".bin" = binary, anything else METIS).
func WriteGraphFile(path string, g *Graph, f GraphFormat) error {
	return graphio.WriteFile(path, g, f)
}

// ReadMetis parses a graph in METIS/Chaco format.
//
// Deprecated: use ReadGraph with FormatMETIS (or FormatAuto).
func ReadMetis(r io.Reader) (*Graph, error) { return graphio.ReadMETIS(r) }

// Config carries every tuning parameter of the partitioner (Table 2).
type Config = core.Config

// Variant selects one of the paper's preset configurations.
type Variant = core.Variant

// Preset variants of Table 2.
const (
	Minimal = core.Minimal
	Fast    = core.Fast
	Strong  = core.Strong
)

// NewConfig returns the preset configuration for variant v and k blocks.
func NewConfig(v Variant, k int) Config { return core.NewConfig(v, k) }

// Result reports a finished partitioning run.
type Result = core.Result

// Run executes the full KaPPa pipeline (parallel coarsening, initial
// partitioning, parallel pairwise refinement) on g — the primary entry
// point. The context is checked between phases, before every contraction
// level, and before every global refinement iteration, so cancellation
// aborts promptly with ctx.Err(); invalid configurations come back as
// ErrInvalidConfig-wrapped errors instead of panics. For a fixed cfg.Seed
// the result is byte-identical to the legacy Partition wrapper.
func Run(ctx context.Context, g *Graph, cfg Config, opts ...Option) (Result, error) {
	return core.Run(ctx, g, cfg, opts...)
}

// Option configures a pipeline run; see WithObserver and WithTransport.
type Option = core.Option

// WithObserver attaches an Observer receiving the run's typed TraceEvents
// (levels pushed, initial cut, per-iteration refinement gains, phase
// timings) in pipeline order. Repeat the option to attach several.
func WithObserver(o Observer) Option { return core.WithObserver(o) }

// WithTransport routes every superstep of distributed coarsening
// (Config.Coarsen = CoarsenDistributed) through t instead of the default
// channel-backed Exchanger — the seam a future RPC or MPI backend plugs
// into. t.PEs() must match the configured PE count.
func WithTransport(t Transport) Option { return core.WithTransport(t) }

// Arena is a reusable pool of the scratch buffers the multilevel kernels
// work in (matching candidate arrays, contraction member lists and scatter
// arrays, refinement bands, projection ping-pong buffers). Each Run gets a
// private arena by default; passing one with WithArena lets repeated runs —
// benchmark repetitions, a long-lived partitioning service — reuse a single
// working set instead of re-allocating it per run. Arenas are safe for
// concurrent use, including concurrent Runs sharing one arena. Results are
// byte-identical with and without arena reuse.
type Arena = mem.Arena

// NewArena returns an empty Arena; it grows to the workloads it serves.
func NewArena() *Arena { return mem.NewArena() }

// WithArena makes the run draw its scratch buffers from a instead of a
// run-private arena; see Arena.
func WithArena(a *Arena) Option { return core.WithArena(a) }

// Observer receives TraceEvents during a Run; see WithObserver.
type Observer = core.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = core.ObserverFunc

// TraceEvent is a typed progress event; the concrete types are LevelEvent,
// InitEvent, RefineEvent and PhaseEvent.
type TraceEvent = core.TraceEvent

// Trace event types.
type (
	// LevelEvent reports one pushed contraction level.
	LevelEvent = core.LevelEvent
	// InitEvent reports the initial partition of the coarsest graph.
	InitEvent = core.InitEvent
	// RefineEvent reports one global refinement iteration on one level.
	RefineEvent = core.RefineEvent
	// PhaseEvent reports a finished phase and its duration.
	PhaseEvent = core.PhaseEvent
)

// Phase names a top-level pipeline stage in PhaseEvents.
type Phase = core.Phase

// Pipeline phases.
const (
	PhaseCoarsen = core.PhaseCoarsen
	PhaseInit    = core.PhaseInit
	PhaseRefine  = core.PhaseRefine
	PhaseTotal   = core.PhaseTotal
)

// Timings is an Observer accumulating per-phase durations from PhaseEvents.
type Timings = core.Timings

// MetricsRegistry is a dependency-free metrics registry (counters, gauges,
// fixed-bound histograms) exposed as Prometheus text and as a JSON snapshot;
// see WithMetrics and MetricsHandler.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WithMetrics attaches an observer that feeds the run's trace events into
// r's pipeline metric catalog (kappa_runs_total, kappa_level_*,
// kappa_init_cut, kappa_refine_*, kappa_phase_seconds).
func WithMetrics(r *MetricsRegistry) Option {
	return core.WithObserver(obs.NewPipelineObserver(r))
}

// MetricsHandler serves r: /metrics (Prometheus text), /metrics.json
// (structured snapshot), and /debug/pprof/.
func MetricsHandler(r *MetricsRegistry) http.Handler { return obs.Handler(r) }

// ArenaStats is a point-in-time snapshot of an Arena's accounting; see
// Arena.Stats.
type ArenaStats = mem.ArenaStats

// BindArenaMetrics registers pull gauges/counters over a's Stats on r.
func BindArenaMetrics(r *MetricsRegistry, a *Arena) { obs.BindArena(r, a) }

// TransportStats aggregates per-PE transport counters (messages, bytes,
// frames, supersteps, barrier time); see WithTransportStats.
type TransportStats = dist.TransportStats

// NewTransportStats returns zeroed counters for pes PEs.
func NewTransportStats(pes int) *TransportStats { return dist.NewTransportStats(pes) }

// WithTransportStats meters every superstep of distributed coarsening into
// s; scrape-safe while the run is in flight.
func WithTransportStats(s *TransportStats) Option { return core.WithTransportStats(s) }

// BindTransportMetrics registers per-PE pull counters over s on r.
func BindTransportMetrics(r *MetricsRegistry, s *TransportStats) { obs.BindTransport(r, s) }

// Report is the structured record of one run; ReportObserver assembles it
// from the trace stream (attach with WithObserver, then call Finish).
type (
	Report         = obs.Report
	ReportObserver = obs.ReportObserver
)

// NewReportObserver returns an observer assembling a Report for a run of g
// under cfg.
func NewReportObserver(g *Graph, cfg Config) *ReportObserver {
	return obs.NewReportObserver(g, cfg)
}

// ErrInvalidConfig wraps every configuration error returned by Run:
// errors.Is(err, repro.ErrInvalidConfig) distinguishes usage errors from
// runtime failures.
var ErrInvalidConfig = core.ErrInvalidConfig

// Transport is the message-passing seam of distributed coarsening: the
// bulk-synchronous superstep operations the PE-local contraction phase is
// written against. NewExchanger returns the channel-backed in-process
// default; NewLockstepTransport a mutex-based alternative; an RPC/MPI
// backend implements the same three methods.
type Transport = dist.Transport

// Msg is one unit of ghost information exchanged between PEs over a
// Transport; MsgKind tags its payload.
type (
	Msg     = dist.Msg
	MsgKind = dist.MsgKind
)

// NewExchanger returns the default channel-backed Transport for pes PEs.
func NewExchanger(pes int) Transport { return dist.NewExchanger(pes) }

// NewLockstepTransport returns the barrier-based alternative Transport for
// pes PEs (same results, different machinery — the drop-in proof).
func NewLockstepTransport(pes int) Transport { return dist.NewLockstepTransport(pes) }

// Partition runs the full KaPPa pipeline on g. Legacy wrapper over Run:
// background context, panics on invalid configuration.
func Partition(g *Graph, cfg Config) Result { return core.Partition(g, cfg) }

// PartitionK partitions g into k blocks with the Fast preset and 3% allowed
// imbalance — the everyday legacy entry point (see Run for the
// error-returning API).
func PartitionK(g *Graph, k int, seed uint64) Result {
	cfg := core.NewConfig(core.Fast, k)
	cfg.Seed = seed
	return core.Partition(g, cfg)
}

// RefineExisting improves an existing block assignment in place of a full
// repartition (the repartitioning building block of the paper's future-work
// section); it returns the refined blocks and their cut.
func RefineExisting(g *Graph, cfg Config, blocks []int32) ([]int32, int64) {
	return core.RefineExisting(g, cfg, blocks)
}

// RefineExistingCtx is RefineExisting under the Run error contract:
// context-aware, error-returning, with optional observers for the
// refinement trace events.
func RefineExistingCtx(ctx context.Context, g *Graph, cfg Config, blocks []int32, opts ...Option) ([]int32, int64, error) {
	return core.RefineExistingCtx(ctx, g, cfg, blocks, opts...)
}

// EvolveResult reports an evolutionary multistart run.
type EvolveResult = core.EvolveResult

// Evolve combines KaPPa with evolutionary multistart search (population of
// seeded runs, champion re-refinement, restart immigration); the paper
// expects this regime to beat plain restarts for large k.
func Evolve(g *Graph, cfg Config, population, generations int) EvolveResult {
	return core.Evolve(g, cfg, population, generations)
}

// Evaluate recomputes cut, balance and feasibility of a block assignment.
func Evaluate(g *Graph, k int, eps float64, blocks []int32) (cut int64, balance float64, feasible bool) {
	p := part.FromBlocks(g, k, eps, blocks)
	return p.Cut(), p.Imbalance(), p.Feasible()
}

// Distribution selects the node-to-PE prepartitioning strategy of §3.3 used
// during parallel coarsening; set it on Config.Distribution or call
// Distribute directly.
type Distribution = dist.Strategy

// Distribution strategies.
const (
	// DistAuto is the paper's behavior: RCB with coordinates, ranges without.
	DistAuto = dist.StrategyAuto
	// DistRanges assigns contiguous node-weight-balanced index ranges.
	DistRanges = dist.StrategyRanges
	// DistRCB is recursive coordinate bisection over node coordinates.
	DistRCB = dist.StrategyRCB
	// DistSFC orders nodes along a Hilbert curve and cuts weighted ranges.
	DistSFC = dist.StrategySFC
)

// ParseDistribution parses a distribution name: auto | ranges | rcb | sfc.
func ParseDistribution(name string) (Distribution, error) { return dist.ParseStrategy(name) }

// CoarsenMode selects how the contraction phase executes; set it on
// Config.Coarsen.
type CoarsenMode = core.CoarsenMode

// Coarsening modes.
const (
	// CoarsenShared matches and contracts on the shared global graph.
	CoarsenShared = core.CoarsenShared
	// CoarsenDistributed runs PE-local matching and contraction over
	// extracted subgraphs with ghost exchange (§3 of the paper) — the
	// configuration that generalizes to graphs exceeding one address space.
	CoarsenDistributed = core.CoarsenDistributed
)

// ParseCoarsenMode parses a coarsening mode name: shared | distributed.
func ParseCoarsenMode(name string) (CoarsenMode, error) { return core.ParseCoarsenMode(name) }

// Distribute assigns every node of g to one of pes PEs with the given
// strategy. Geometric strategies fall back to ranges when g carries no
// coordinates.
func Distribute(g *Graph, s Distribution, pes int) []int32 { return dist.Assign(g, s, pes) }

// EdgeLocality returns the fraction of edge weight internal to a node-to-PE
// assignment (1 = no cross-PE edges); the quantity a good distribution
// maximizes.
func EdgeLocality(g *Graph, assign []int32) float64 { return dist.EdgeLocality(g, assign) }

// DistImbalance returns max per-PE node weight over the average (1 = perfect
// balance).
func DistImbalance(g *Graph, assign []int32, pes int) float64 {
	return dist.Imbalance(g, assign, pes)
}

// Subgraph is one PE's local share of a distributed graph: owned nodes,
// ghost (halo) layer, and local↔global ID maps.
type Subgraph = dist.Subgraph

// ExtractSubgraphs materializes every PE's local subgraph (with ghost
// layers) for a node-to-PE assignment.
func ExtractSubgraphs(g *Graph, assign []int32, pes int) []*Subgraph {
	return dist.ExtractAll(g, assign, pes)
}

// BaselineTool selects one of the comparison partitioners of §6.2.
type BaselineTool = baseline.Tool

// Baseline partitioners.
const (
	KMetisLike   = baseline.KMetisLike
	ParMetisLike = baseline.ParMetisLike
	ScotchLike   = baseline.ScotchLike
)

// BaselineResult reports one baseline run.
type BaselineResult = baseline.Result

// RunBaseline partitions g with one of the comparison tools.
func RunBaseline(g *Graph, k int, eps float64, tool BaselineTool, seed uint64) BaselineResult {
	return baseline.Run(g, k, eps, tool, seed)
}

// Benchmark-family graph generators (Table 1).

// RGG generates a random geometric graph with 2^scale nodes (rggX).
func RGG(scale int, seed uint64) *Graph { return gen.RGG(scale, seed) }

// DelaunayX generates the Delaunay triangulation of 2^scale random points.
func DelaunayX(scale int, seed uint64) *Graph { return gen.DelaunayX(scale, seed) }

// Grid2D generates a w×h lattice with coordinates.
func Grid2D(w, h int) *Graph { return gen.Grid2D(w, h) }

// Grid3D generates an x×y×z lattice (3D FEM stand-in).
func Grid3D(x, y, z int) *Graph { return gen.Grid3D(x, y, z) }

// FEMMesh generates an unstructured 2D triangle mesh with holes.
func FEMMesh(n, holes int, seed uint64) *Graph { return gen.FEMMesh(n, holes, seed) }

// Road generates a road-network-like graph (near-planar, low degree,
// obstacle structure).
func Road(n, obstacles int, seed uint64) *Graph { return gen.Road(n, obstacles, seed) }

// PrefAttach generates a preferential-attachment social network.
func PrefAttach(n, d int, seed uint64) *Graph { return gen.PrefAttach(n, d, seed) }

// RMAT generates an RMAT power-law graph with 2^scale nodes.
func RMAT(scale, edgeFactor int, seed uint64) *Graph { return gen.RMAT(scale, edgeFactor, seed) }

// Banded generates a sparse-matrix-like banded graph.
func Banded(n, blk, band int, fill float64, seed uint64) *Graph {
	return gen.Banded(n, blk, band, fill, seed)
}

// GenerateFromSpec builds a benchmark-family graph from a compact spec
// string — the vocabulary of the kappa CLI's -gen flag and the API's "gen"
// job field: rgg:S, delaunay:S, grid:WxH, grid3d:XxYxZ, road:N, social:N,
// rmat:S, fem:N, banded:N. Specs are validated (sizes bounded, dimensions
// positive) before any generator runs.
func GenerateFromSpec(spec string) (*Graph, error) { return gen.FromSpec(spec) }

// ShardStore is the on-disk sharded graph store (kappastore): one
// wire-encoded subgraph file per PE, a fixed-layout CSR segment of the
// global graph, and a versioned manifest. It is the out-of-core input format
// of the serve coordinator (`kappa serve -shards`) and the service's
// shard_dir jobs — the coordinator streams shard bytes to workers and
// memory-maps the CSR segment, never materializing the global adjacency on
// its heap.
type ShardStore = store.Store

// ShardManifest is the store's versioned metadata document: shard count,
// distribution strategy, per-shard node/edge counts and checksums, and the
// CSR segment's layout.
type ShardManifest = store.Manifest

// ShardWriteOptions configures WriteShards: shard count (one per PE), the
// node-to-PE distribution strategy, writer concurrency, and the provenance
// seed recorded in the manifest.
type ShardWriteOptions = store.WriteOptions

// ShardMappedGraph is a store-backed view of the global graph; when Mapped
// reports true its CSR arrays alias the memory-mapped segment at O(1) heap
// cost.
type ShardMappedGraph = store.MappedGraph

// WriteShards distributes g's nodes across shards and writes a shard store
// directory — the library form of `kappa shard`.
func WriteShards(dir string, g *Graph, opts ShardWriteOptions) (*ShardManifest, error) {
	return store.Write(dir, g, opts)
}

// OpenShards opens a shard store directory, validating its manifest against
// the decode budgets; shards load lazily.
func OpenShards(dir string) (*ShardStore, error) { return store.Open(dir) }

// Service is the embeddable partitioner-as-a-service: the bounded job queue,
// admission control, per-job deadlines, panic isolation, and graceful drain
// behind the `kappa api` daemon. Mount Handler() on an HTTP server (see
// NewHTTPServer for a hardened one).
type Service = svc.Server

// ServiceOptions configures a Service; the zero value is serviceable.
type ServiceOptions = svc.Options

// ServiceJobSpec is the submit-request body of the service API.
type ServiceJobSpec = svc.JobSpec

// ServiceJobStatus is the poll-endpoint view of a service job.
type ServiceJobStatus = svc.Status

// ServiceJobState is a job's position in its lifecycle.
type ServiceJobState = svc.State

// Service job states.
const (
	JobQueued   = svc.StateQueued
	JobRunning  = svc.StateRunning
	JobDone     = svc.StateDone
	JobFailed   = svc.StateFailed
	JobCanceled = svc.StateCanceled
)

// NewService starts a partitioning service; stop it with Drain or Close.
func NewService(opts ServiceOptions) *Service { return svc.New(opts) }

// NewHTTPServer wraps h in an http.Server hardened against slow and hostile
// clients (header/read/idle timeouts) — the same construction the kappa
// api and observability endpoints use.
func NewHTTPServer(h http.Handler) *http.Server { return obs.NewServer(h) }
