package repro_test

import (
	"fmt"

	"repro"
)

// ExampleDistribute shows the graph-distribution layer on its own: compare
// the edge locality of the three strategies on a structured grid, pick one
// for the partitioner, and extract per-PE subgraphs with ghost layers.
func ExampleDistribute() {
	g := repro.Grid2D(32, 32)
	const pes = 16

	for _, s := range []repro.Distribution{repro.DistRanges, repro.DistRCB, repro.DistSFC} {
		assign := repro.Distribute(g, s, pes)
		fmt.Printf("%-6s locality=%.2f imbalance=%.2f\n",
			s, repro.EdgeLocality(g, assign), repro.DistImbalance(g, assign, pes))
	}

	// Use a specific strategy inside the full pipeline.
	cfg := repro.NewConfig(repro.Fast, pes)
	cfg.Distribution = repro.DistRCB
	cfg.Seed = 42
	res := repro.Partition(g, cfg)
	fmt.Println("feasible partition:", res.Cut > 0)

	// Extract each PE's local subgraph plus halo.
	assign := repro.Distribute(g, repro.DistRCB, pes)
	subs := repro.ExtractSubgraphs(g, assign, pes)
	owned := 0
	for _, s := range subs {
		owned += s.NumOwned
	}
	fmt.Println("owned nodes across PEs:", owned == g.NumNodes())

	// Output:
	// ranges locality=0.76 imbalance=1.00
	// rcb    locality=0.90 imbalance=1.00
	// sfc    locality=0.90 imbalance=1.00
	// feasible partition: true
	// owned nodes across PEs: true
}
