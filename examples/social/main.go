// Social: partitioning a power-law social network. Heavy-tailed degree
// distributions break the assumptions of plain heavy-edge matching; the
// paper's expansion*2 rating, which penalizes heavy end nodes, keeps the
// contraction uniform. This example measures the edge-rating effect (Table 3)
// on a preferential-attachment graph.
package main

import (
	"fmt"

	"repro"
	"repro/internal/rating"
)

func main() {
	const k = 8
	g := repro.PrefAttach(20000, 6, 13)
	fmt.Printf("social network: n=%d m=%d\n", g.NumNodes(), g.NumEdges())

	for _, rf := range []rating.Func{rating.Weight, rating.Expansion, rating.ExpansionStar, rating.ExpansionStar2, rating.InnerOuter} {
		cfg := repro.NewConfig(repro.Fast, k)
		cfg.Seed = 31
		cfg.Rating = rf
		var total int64
		const reps = 3
		for s := uint64(0); s < reps; s++ {
			cfg.Seed = 31 + s
			total += repro.Partition(g, cfg).Cut
		}
		fmt.Printf("rating %-14s avg cut=%d\n", rf, total/reps)
	}

	fmt.Println("\nexpansion-family ratings discourage contracting hub nodes,")
	fmt.Println("keeping node weights uniform across the multilevel hierarchy.")
}
