// Roadnet: partitioning a road network. The paper highlights that on the
// European road network KaPPa finds the natural cut structure (rivers,
// mountains) that Metis misses by a wide margin; this example reproduces
// that contrast on a synthetic road network with obstacle structure,
// comparing KaPPa against the Metis-like baselines.
package main

import (
	"fmt"

	"repro"
)

func main() {
	const k = 8
	road := repro.Road(40000, 12, 5)
	fmt.Printf("road network: n=%d m=%d (avg degree %.2f)\n",
		road.NumNodes(), road.NumEdges(), 2*float64(road.NumEdges())/float64(road.NumNodes()))

	cfg := repro.NewConfig(repro.Fast, k)
	cfg.Seed = 21
	res := repro.Partition(road, cfg)
	fmt.Printf("%-14s cut=%5d balance=%.3f time=%v\n", "KaPPa-Fast", res.Cut, res.Balance, res.TotalTime.Round(1e6))

	for _, tool := range []repro.BaselineTool{repro.ScotchLike, repro.KMetisLike, repro.ParMetisLike} {
		br := repro.RunBaseline(road, k, 0.03, tool, 21)
		fmt.Printf("%-14s cut=%5d balance=%.3f time=%v\n", tool, br.Cut, br.Balance, br.Time.Round(1e6))
	}

	// Road networks come with coordinates, which KaPPa exploits for
	// geometric prepartitioning during coarsening; this is the workload the
	// current implementation is optimized for (§6.2).
	if road.HasCoords() {
		fmt.Println("\ncoordinates present: coarsening used recursive coordinate bisection")
	}
}
