// Mesh: finite-element domain decomposition, the workload that motivates the
// paper's introduction. A 2D triangle mesh with holes is split into 16
// subdomains for a hypothetical parallel solver; the cut size bounds the
// halo-exchange volume per iteration and the balance bounds the slowest
// rank's load, so we report both along with per-block halo statistics.
package main

import (
	"fmt"

	"repro"
	"repro/internal/part"
)

func main() {
	const k = 16
	mesh := repro.FEMMesh(20000, 8, 3)
	fmt.Printf("FEM mesh: n=%d m=%d\n", mesh.NumNodes(), mesh.NumEdges())

	for _, v := range []repro.Variant{repro.Minimal, repro.Fast, repro.Strong} {
		cfg := repro.NewConfig(v, k)
		cfg.Seed = 11
		res := repro.Partition(mesh, cfg)
		fmt.Printf("%-14s cut=%5d balance=%.3f time=%v\n",
			v, res.Cut, res.Balance, res.TotalTime.Round(1e6))
	}

	// Decompose with the Strong preset and report solver-facing statistics.
	cfg := repro.NewConfig(repro.Strong, k)
	cfg.Seed = 11
	res := repro.Partition(mesh, cfg)
	p := part.FromBlocks(mesh, k, cfg.Eps, res.Blocks)

	boundary := make([]int, k)
	for _, v := range p.BoundaryNodes() {
		boundary[p.Block[v]]++
	}
	fmt.Println("\nper-subdomain halo statistics (Strong):")
	fmt.Printf("%5s %8s %10s %10s\n", "block", "nodes", "halo", "neighbors")
	for b := int32(0); b < int32(k); b++ {
		fmt.Printf("%5d %8d %10d %10d\n", b, p.BlockWeight(b), boundary[b], p.ExternalDegree(b))
	}
	fmt.Printf("\ntotal cut %d = halo-exchange edges per solver iteration\n", res.Cut)
}
