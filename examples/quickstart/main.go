// Quickstart: build a graph, partition it with KaPPa-Fast, inspect the
// result. This is the smallest end-to-end use of the public API: repro.Run
// with a context, an error check, and an optional progress observer.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	// Build a small weighted graph by hand: two 4-cliques joined by a
	// single light bridge. The obvious bisection cuts only the bridge.
	b := repro.NewBuilder(8)
	for c := int32(0); c < 2; c++ {
		base := 4 * c
		for i := base; i < base+4; i++ {
			for j := i + 1; j < base+4; j++ {
				b.AddEdge(i, j, 10)
			}
		}
	}
	b.AddEdge(3, 4, 1) // the bridge
	g := b.Build()

	// repro.PartitionK is the legacy one-liner (panics on bad input);
	// repro.Run is the primary entry point and returns errors instead.
	cfg := repro.NewConfig(repro.Fast, 2)
	cfg.Seed = 42
	res, err := repro.Run(context.Background(), g, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	fmt.Printf("n=%d m=%d  cut=%d  balance=%.3f\n",
		g.NumNodes(), g.NumEdges(), res.Cut, res.Balance)
	fmt.Printf("blocks: %v\n", res.Blocks)
	if res.Cut == 1 {
		fmt.Println("found the bridge: only the light edge is cut")
	}

	// The same partitioner scales to generated instances; here a 2^14-node
	// random geometric graph into 16 blocks with the Strong preset, under a
	// deadline and with typed trace events streamed as it works.
	rgg := repro.RGG(14, 7)
	cfg = repro.NewConfig(repro.Strong, 16)
	cfg.Seed = 7
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err = repro.Run(ctx, rgg, cfg,
		repro.WithObserver(repro.ObserverFunc(func(ev repro.TraceEvent) {
			if _, ok := ev.(repro.PhaseEvent); ok {
				fmt.Println("  ", ev)
			}
		})))
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	cut, bal, feasible := repro.Evaluate(rgg, 16, cfg.Eps, res.Blocks)
	fmt.Printf("rgg14 k=16: cut=%d balance=%.3f feasible=%v time=%v\n",
		cut, bal, feasible, res.TotalTime.Round(1e6))
}
